package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// determinismPkgs are the packages whose behaviour must be a pure
// function of configuration and seed: every differential proof in the
// repo (slice-vs-bitset equivalence, contention-injection closure,
// batch-vs-serial identity) depends on byte-identical replays.
var determinismPkgs = map[string]bool{
	"sparcs/internal/arbiter":  true,
	"sparcs/internal/core":     true,
	"sparcs/internal/sim":      true,
	"sparcs/internal/workload": true,
}

// parallelForPkg/parallelForFunc name the one blessed goroutine spawn
// point: sim.ParallelFor, whose deterministic fan-in is itself tested.
const (
	parallelForPkg  = "sparcs/internal/sim"
	parallelForFunc = "ParallelFor"
)

// Determinism forbids the nondeterminism sources that would silently
// break replay identity in the cycle-rate packages: map range iteration
// (unless the body only collects keys for sorting), wall-clock reads
// (time.Now/Since/Until) and wall-clock scheduling (time.Sleep/After
// and the ticker/timer constructors), environment reads
// (os.Getenv/LookupEnv/Environ), host-CPU-count dependence
// (runtime.NumCPU/GOMAXPROCS), the global math/rand state, and
// goroutine spawns anywhere but sim.ParallelFor.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "forbid map iteration, wall clocks, sleeps, environment reads, CPU-count branching, global rand, and stray goroutines in the deterministic core packages",
	Run:  runDeterminism,
}

func runDeterminism(pass *Pass) error {
	if !determinismPkgs[pass.Package.Path] {
		return nil
	}
	info := pass.TypesInfo
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			goAllowed := pass.Package.Path == parallelForPkg && fd.Name.Name == parallelForFunc
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.RangeStmt:
					if _, isMap := info.TypeOf(n.X).Underlying().(*types.Map); isMap && !keyCollectLoop(info, n) {
						pass.Reportf(n.Pos(), "map range iteration order is nondeterministic; collect and sort the keys first")
					}
				case *ast.GoStmt:
					if !goAllowed {
						pass.Reportf(n.Pos(), "goroutine spawn outside sim.ParallelFor breaks deterministic scheduling")
					}
				case *ast.Ident:
					checkDeterminismUse(pass, info, n)
				}
				return true
			})
		}
	}
	return nil
}

// checkDeterminismUse flags references to wall clocks and the global
// math/rand state.
func checkDeterminismUse(pass *Pass, info *types.Info, id *ast.Ident) {
	fn, ok := info.Uses[id].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	switch fn.Pkg().Path() {
	case "time":
		switch fn.Name() {
		case "Now", "Since", "Until":
			pass.Reportf(id.Pos(), "time.%s reads the wall clock; cycle-rate code must be clock-free", fn.Name())
		case "Sleep", "After", "Tick", "NewTicker", "NewTimer":
			pass.Reportf(id.Pos(), "time.%s couples simulated cycles to wall-clock scheduling; replays would diverge by host load", fn.Name())
		}
	case "os":
		switch fn.Name() {
		case "Getenv", "LookupEnv", "Environ":
			pass.Reportf(id.Pos(), "os.%s makes behavior depend on the host environment; thread configuration through Options instead", fn.Name())
		}
	case "runtime":
		switch fn.Name() {
		case "NumCPU", "GOMAXPROCS":
			pass.Reportf(id.Pos(), "runtime.%s makes results depend on the host CPU count; replays must be machine-independent", fn.Name())
		}
	case "math/rand", "math/rand/v2":
		sig, _ := fn.Type().(*types.Signature)
		if sig != nil && sig.Recv() == nil && !strings.HasPrefix(fn.Name(), "New") {
			pass.Reportf(id.Pos(), "global %s.%s is shared nondeterministic state; use a seeded rand.New(rand.NewSource(seed)) or the package rng", fn.Pkg().Name(), fn.Name())
		}
	}
}

// keyCollectLoop recognizes the blessed sort-the-keys idiom: a map
// range whose body is exactly `keys = append(keys, k)` (the caller is
// expected to sort before iterating the slice).
func keyCollectLoop(info *types.Info, rng *ast.RangeStmt) bool {
	key, ok := rng.Key.(*ast.Ident)
	if !ok || rng.Value != nil || rng.Body == nil || len(rng.Body.List) != 1 {
		return false
	}
	asg, ok := rng.Body.List[0].(*ast.AssignStmt)
	if !ok || asg.Tok != token.ASSIGN || len(asg.Lhs) != 1 || len(asg.Rhs) != 1 {
		return false
	}
	dst, ok := asg.Lhs[0].(*ast.Ident)
	if !ok {
		return false
	}
	call, ok := asg.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) != 2 || call.Ellipsis.IsValid() {
		return false
	}
	fn, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	if b, ok := info.Uses[fn].(*types.Builtin); !ok || b.Name() != "append" {
		return false
	}
	a0, ok0 := ast.Unparen(call.Args[0]).(*ast.Ident)
	a1, ok1 := ast.Unparen(call.Args[1]).(*ast.Ident)
	return ok0 && ok1 && a0.Name == dst.Name && a1.Name == key.Name
}
