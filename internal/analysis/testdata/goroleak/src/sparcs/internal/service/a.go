// Seeded violations for the goroleak analyzer: goroutines in the
// service layer must select on ctx.Done() or block only on buffered
// channel sends, and slot acquires must pair with deferred releases.
package service

import (
	"context"
	"sync"
)

// SpawnWithCtx selects on ctx.Done(): a provable exit. Clean.
func SpawnWithCtx(ctx context.Context, work chan int) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case v := <-work:
				_ = v
			}
		}
	}()
}

// SpawnBounded is the blessed result-handoff idiom: the only blocking
// op is a send on a buffered channel. Clean.
func SpawnBounded() int {
	ch := make(chan int, 1)
	go func() {
		ch <- 42
	}()
	return <-ch
}

// SpawnUnbuffered sends on an unbuffered channel with no ctx escape: if
// the receiver is gone, the goroutine blocks forever.
func SpawnUnbuffered() int {
	ch := make(chan int)
	go func() { // want `goroutine may leak: it can block forever \(channel send on an unbuffered or unresolved channel\)`
		ch <- 42
	}()
	return <-ch
}

// SpawnReceive blocks on a receive nothing may ever send.
func SpawnReceive(ch chan int) {
	go func() { // want `goroutine may leak: it can block forever \(channel receive\)`
		<-ch
	}()
}

// SpawnWaiter parks in WaitGroup.Wait with no cancellation escape.
func SpawnWaiter(wg *sync.WaitGroup, done chan struct{}) {
	go func() { // want `goroutine may leak: it can block forever \(sync.WaitGroup.Wait\)`
		wg.Wait()
		close(done)
	}()
}

type pool struct {
	mu   sync.Mutex
	cond *sync.Cond
	n    int
}

// watch parks in cond.Wait: nothing guarantees a wakeup after the
// spawner stops caring.
func (p *pool) watch(done chan struct{}) {
	go func() { // want `goroutine may leak: it can block forever \(sync.Cond.Wait\)`
		p.mu.Lock()
		for p.n > 0 {
			p.cond.Wait()
		}
		p.mu.Unlock()
		close(done)
	}()
}

func pump(ch chan int) {
	for v := range ch {
		_ = v
	}
}

// SpawnPump spawns a named function whose transitive summary blocks.
func SpawnPump(ch chan int) {
	go pump(ch) // want `goroutine may leak: it can block forever \(channel receive \(range\)\)`
}

func pumpCtx(ctx context.Context, ch chan int) {
	for {
		select {
		case <-ctx.Done():
			return
		case <-ch:
		}
	}
}

// SpawnPumpCtx spawns a named function that selects on ctx.Done(). Clean.
func SpawnPumpCtx(ctx context.Context, ch chan int) {
	go pumpCtx(ctx, ch)
}

// SpawnDynamic runs a function value: no callee set, no proof.
func SpawnDynamic(f func()) {
	go f() // want `goroutine runs a dynamic function value; its exit cannot be proven`
}

// slots is an admission-style resource: acquire must pair with a
// deferred release in the same function.
type slots struct {
	mu sync.Mutex
	n  int
}

func (s *slots) acquire(ctx context.Context) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.n++
	return nil
}

func (s *slots) release() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.n--
}

type server struct{ adm *slots }

// handleGood releases on every return path via defer. Clean.
func (s *server) handleGood(ctx context.Context) error {
	if err := s.adm.acquire(ctx); err != nil {
		return err
	}
	defer s.adm.release()
	return nil
}

// handleLeaky releases only on the straight-line path: a panic or an
// early return between acquire and release leaks the slot.
func (s *server) handleLeaky(ctx context.Context) error {
	if err := s.adm.acquire(ctx); err != nil { // want `slot acquired without a deferred release on the same object`
		return err
	}
	s.adm.release()
	return nil
}
