// Package partition implements the SPARCS partitioning stack the
// arbitration mechanism plugs into (paper Section 5): temporal
// partitioning of the taskgraph into reconfiguration stages, spatial
// assignment of tasks to FPGAs, arbitration-aware memory mapping of
// logical segments onto physical banks, and routing of logical channels
// onto shared physical channels.
//
// The memory mapper is the piece the paper's results hinge on: it packs
// segments into banks minimizing total arbiter inputs (tasks with an
// unordered peer on the same bank) plus remote-bus pin cost, which is what
// makes the FFT case study's Arb6 + Arb2 structure emerge.
package partition

import (
	"fmt"
	"sort"

	"sparcs/internal/rc"
	"sparcs/internal/taskgraph"
)

// Options tunes the partitioning heuristics. The zero value is usable.
type Options struct {
	// ArbArea estimates arbiter CLB area for n request lines; nil uses a
	// built-in table from the pre-characterization sweep.
	ArbArea func(n int) int
	// ExpectedContention maps resource names (bank or physical channel)
	// to the background phantom request lines simulation is expected to
	// add. The area model then prices each arbiter at its simulated
	// width — members plus expected phantoms — instead of member width,
	// so a design that fits at compile time still fits once contention
	// widens its arbiters (core.Compile derives this from
	// Options.Contention/Shared when unset).
	ExpectedContention map[string]int
	// BusPins is the pin cost of one PE-to-remote-bank bus (address +
	// data + mode lines); 0 means the default 25, matching the paper's
	// Figure 11 annotations ("25+2+2" = bus + two request/grant pairs).
	BusPins int
	// FixedStages overrides automatic temporal partitioning with an
	// explicit stage list (SPARCS accepted user partitioning constraints;
	// the paper's 3-stage FFT split comes from its temporal ILP, which is
	// outside this paper's scope).
	FixedStages [][]string
}

func (o Options) busPins() int {
	if o.BusPins <= 0 {
		return 25
	}
	return o.BusPins
}

func (o Options) arbArea(n int) int {
	if n < 2 {
		return 0
	}
	if o.ArbArea != nil {
		return o.ArbArea(n)
	}
	// Synplify one-hot pre-characterization (internal/synth sweep).
	table := map[int]int{2: 4, 3: 10, 4: 13, 5: 19, 6: 25, 7: 31, 8: 37, 9: 50, 10: 55}
	if a, ok := table[n]; ok {
		return a
	}
	return 55 + (n-10)*9
}

// Stage is one temporal partition with its spatial and memory solution.
type Stage struct {
	Index  int
	Tasks  []string
	TaskPE map[string]int
	// SegBank maps each segment accessed in this stage to a bank index.
	SegBank map[string]int
	// Banks lists, per board bank, the segments mapped to it.
	Banks [][]string
	// Arbiters lists the shared-resource arbiters this stage needs.
	Arbiters []ArbiterSpec
	// PinUse is the crossbar/link pin usage per PE.
	PinUse []int
}

// ArbiterSpec names one required arbiter: the resource (bank or physical
// channel), the tasks wired to request/grant lines, and the tasks that
// access the resource without arbitration because control dependencies
// order them against every contender (elided, paper Section 5).
type ArbiterSpec struct {
	Resource string
	Members  []string
	Elided   []string
}

// N returns the arbiter input count.
func (a ArbiterSpec) N() int { return len(a.Members) }

// StageArea is the stage's resident CLB footprint: every task's area
// plus each arbiter priced by the options' area model at its expected
// simulated width (members + ExpectedContention lines) — the same
// pricing checkAreaWithArbiters enforces per PE, summed board-wide.
// Schedulers that treat a compiled stage as one relocatable region
// (internal/scenario's strip packer) size its rectangle from this.
func StageArea(g *taskgraph.Graph, st *Stage, opts Options) int {
	area := 0
	for _, t := range st.Tasks {
		area += g.TaskByName(t).AreaCLBs
	}
	for _, arb := range st.Arbiters {
		area += opts.arbArea(arb.N() + opts.ExpectedContention[arb.Resource])
	}
	return area
}

// Temporal splits the taskgraph into reconfiguration stages and solves
// each stage's spatial assignment and memory map.
func Temporal(g *taskgraph.Graph, board *rc.Board, opts Options) ([]*Stage, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if err := board.Validate(); err != nil {
		return nil, err
	}
	var stageTasks [][]string
	if opts.FixedStages != nil {
		if err := validateFixedStages(g, opts.FixedStages); err != nil {
			return nil, err
		}
		stageTasks = opts.FixedStages
	} else {
		var err error
		stageTasks, err = autoStages(g, board, opts)
		if err != nil {
			return nil, err
		}
	}
	var stages []*Stage
	for i, tasks := range stageTasks {
		st, err := solveStage(g, board, tasks, opts)
		if err != nil {
			return nil, fmt.Errorf("partition: stage %d: %w", i, err)
		}
		st.Index = i
		stages = append(stages, st)
	}
	return stages, nil
}

func validateFixedStages(g *taskgraph.Graph, stages [][]string) error {
	seen := map[string]int{}
	for si, tasks := range stages {
		for _, t := range tasks {
			if g.TaskByName(t) == nil {
				return fmt.Errorf("partition: fixed stage %d names unknown task %s", si, t)
			}
			if prev, dup := seen[t]; dup {
				return fmt.Errorf("partition: task %s in stages %d and %d", t, prev, si)
			}
			seen[t] = si
		}
	}
	if len(seen) != len(g.Tasks) {
		return fmt.Errorf("partition: fixed stages cover %d of %d tasks", len(seen), len(g.Tasks))
	}
	// Dependencies must not point to later stages.
	for si, tasks := range stages {
		for _, t := range tasks {
			for _, d := range g.TaskByName(t).Deps {
				if seen[d] > si {
					return fmt.Errorf("partition: task %s (stage %d) depends on %s (stage %d)", t, si, d, seen[d])
				}
			}
		}
	}
	return nil
}

// autoStages greedily accumulates tasks in topological order, closing a
// stage when adding the next task yields no feasible spatial/memory
// solution.
func autoStages(g *taskgraph.Graph, board *rc.Board, opts Options) ([][]string, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	var stages [][]string
	var current []string
	for _, t := range order {
		candidate := append(append([]string(nil), current...), t)
		if _, err := solveStage(g, board, candidate, opts); err == nil {
			current = candidate
			continue
		}
		if len(current) == 0 {
			return nil, fmt.Errorf("partition: task %s alone does not fit the board", t)
		}
		stages = append(stages, current)
		current = []string{t}
		if _, err := solveStage(g, board, current, opts); err != nil {
			return nil, fmt.Errorf("partition: task %s alone does not fit the board: %w", t, err)
		}
	}
	if len(current) > 0 {
		stages = append(stages, current)
	}
	return stages, nil
}

// solveStage computes a full solution (spatial + memory + arbiters + pins)
// for one stage's task set, or an error if infeasible.
func solveStage(g *taskgraph.Graph, board *rc.Board, tasks []string, opts Options) (*Stage, error) {
	taskPE, err := assignTasks(g, board, tasks)
	if err != nil {
		return nil, err
	}
	st := &Stage{Tasks: append([]string(nil), tasks...), TaskPE: taskPE}
	if err := mapSegments(g, board, st, opts); err != nil {
		return nil, err
	}
	if err := checkAreaWithArbiters(g, board, st, opts); err != nil {
		return nil, err
	}
	if err := checkPins(g, board, st, opts); err != nil {
		return nil, err
	}
	return st, nil
}

// assignTasks places tasks on PEs: first-fit decreasing by area, preferring
// the PE with the highest segment-sharing affinity, then the most free
// space.
func assignTasks(g *taskgraph.Graph, board *rc.Board, tasks []string) (map[string]int, error) {
	sorted := append([]string(nil), tasks...)
	sort.SliceStable(sorted, func(i, j int) bool {
		return g.TaskByName(sorted[i]).AreaCLBs > g.TaskByName(sorted[j]).AreaCLBs
	})
	load := make([]int, len(board.PEs))
	onPE := make([][]string, len(board.PEs))
	assign := map[string]int{}
	for _, name := range sorted {
		t := g.TaskByName(name)
		best, bestAff, bestFree := -1, -1, -1
		for pe := range board.PEs {
			free := board.PEs[pe].Device.CLBs - load[pe]
			if t.AreaCLBs > free {
				continue
			}
			aff := 0
			for _, other := range onPE[pe] {
				// Ordered (producer/consumer) sharing benefits from
				// co-location; unordered sharers serialize on the bank at
				// run time, so spreading them overlaps their compute.
				if g.Ordered(name, other) {
					aff += sharedSegments(g, name, other)
				} else {
					aff -= 2 * sharedSegments(g, name, other)
				}
			}
			if aff > bestAff || (aff == bestAff && free > bestFree) {
				best, bestAff, bestFree = pe, aff, free
			}
		}
		if best < 0 {
			return nil, fmt.Errorf("task %s (%d CLBs) does not fit any PE", name, t.AreaCLBs)
		}
		assign[name] = best
		load[best] += t.AreaCLBs
		onPE[best] = append(onPE[best], name)
	}
	return assign, nil
}

func sharedSegments(g *taskgraph.Graph, a, b string) int {
	segs := map[string]bool{}
	for _, s := range g.TaskByName(a).Segments() {
		segs[s] = true
	}
	n := 0
	for _, s := range g.TaskByName(b).Segments() {
		if segs[s] {
			n++
		}
	}
	return n
}
