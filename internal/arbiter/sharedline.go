package arbiter

import (
	"fmt"

	"sparcs/internal/netlist"
)

// LineScheme selects how multiple tasks drive one shared resource input
// line when not granted (paper Section 2.2, Figure 4).
type LineScheme uint8

const (
	// Tristate: each task drives through a tristate buffer enabled by its
	// grant; with no grants the line floats (acceptable for address/data
	// lines, dangerous for control lines).
	Tristate LineScheme = iota
	// ActiveHighOr: each task gates its value with its grant and the
	// results are OR-ed, so an idle line reads 0 — the safe default for
	// active-high inputs like a memory's write-enable (Figure 4b).
	ActiveHighOr
	// ActiveLowAnd: the dual for active-low inputs: gated with NOT grant
	// via OR, then AND-ed, so an idle line reads 1 (Figure 4c).
	ActiveLowAnd
)

func (s LineScheme) String() string {
	switch s {
	case Tristate:
		return "tristate"
	case ActiveHighOr:
		return "active-high-or"
	case ActiveLowAnd:
		return "active-low-and"
	default:
		return fmt.Sprintf("LineScheme(%d)", int(s))
	}
}

// BuildSharedLine wires n tasks' per-task value nets onto one shared line
// in the netlist under the chosen scheme. grants and values must have
// equal length >= 2. It returns the shared line's net.
//
// The paper's rule: address/data lines may use Tristate; any active-high
// resource input must use ActiveHighOr so an idle resource sees its
// inactive level (e.g. a RAM stays in read mode); active-low inputs use
// ActiveLowAnd.
func BuildSharedLine(n *netlist.Netlist, scheme LineScheme, values, grants []netlist.NetID) (netlist.NetID, error) {
	if len(values) != len(grants) {
		return 0, fmt.Errorf("arbiter: %d values vs %d grants", len(values), len(grants))
	}
	if len(values) < 2 {
		return 0, fmt.Errorf("arbiter: shared line needs at least 2 drivers, got %d", len(values))
	}
	switch scheme {
	case Tristate:
		line := n.AddNet("shared_line")
		for i := range values {
			n.AddTBuf(values[i], grants[i], line)
		}
		return line, nil
	case ActiveHighOr:
		terms := make([]netlist.NetID, len(values))
		for i := range values {
			terms[i] = n.AddGate(netlist.And, values[i], grants[i])
		}
		return n.AddGate(netlist.Or, terms...), nil
	case ActiveLowAnd:
		terms := make([]netlist.NetID, len(values))
		for i := range values {
			notGrant := n.AddGate(netlist.Not, grants[i])
			terms[i] = n.AddGate(netlist.Or, values[i], notGrant)
		}
		return n.AddGate(netlist.And, terms...), nil
	default:
		return 0, fmt.Errorf("arbiter: unknown line scheme %v", scheme)
	}
}

// RecommendedScheme returns the line scheme the paper prescribes for a
// resource input: Tristate for data/address buses, ActiveHighOr for
// active-high controls, ActiveLowAnd for active-low controls.
func RecommendedScheme(control bool, activeLow bool) LineScheme {
	if !control {
		return Tristate
	}
	if activeLow {
		return ActiveLowAnd
	}
	return ActiveHighOr
}
